(** Op-scoped persist spans: the instrumentation spine of the stack.

    {!Stats} keeps per-thread aggregate counters; they can only check the
    paper's claims as *averages*.  The paper's headline bounds are
    per-operation worst cases (exactly one SFENCE per operation for the
    four new queues, zero accesses to flushed content for the Opt
    variants), so this module scopes the accounting to operations: a
    {e span} is a labeled counter frame opened and closed around one
    logical operation on the calling thread.  Every {!Heap} primitive
    records through {!record}, which feeds the thread's total counters
    (the same {!Stats.t} existing call sites read) and the per-thread
    logical clock; closing a span yields the exact counter delta that
    single operation accrued.

    Closed spans are aggregated per label (count, sum, and {e maximum}
    per-span values — the worst case a census reports next to the
    average), optionally retained in a bounded per-thread ring buffer for
    trace export (JSONL or Chrome trace-event format), and optionally
    passed to a sink callback (the online auditor of
    [Spec.Fence_audit]).

    Nesting: spans nest per thread.  A span opened with [~exclude:true]
    (setup work such as {!Heap.alloc_region}'s designated-area persist)
    reports its own delta but is subtracted from every enclosing span, so
    steady-state op spans are not charged for allocator growth that
    merely happened to run inside them.

    Thread safety: stacks, clocks, aggregates and rings are per-thread
    ({!Tid}) and touched only by their owner; [aggregates], [trace] and
    the export functions merge across threads and must be called at
    quiescence, like {!Stats.snapshot}.  The sink may be invoked
    concurrently from every closing thread and must synchronise
    internally. *)

type kind =
  | Read
  | Write
  | Cas
  | Flush
  | Fence
  | Movnti
  | Post_flush_read
  | Post_flush_write

type closed = {
  label : string;
  tid : int;
  seq : int;  (** per-thread close order *)
  t0 : int;  (** thread-local instruction-clock tick at open *)
  t1 : int;  (** tick at close *)
  delta : Stats.counters;  (** exactly what this span accrued *)
  excluded : bool;  (** opened with [~exclude:true] *)
  instant : bool;  (** a point event recorded with {!event}, not a span *)
}

type agg = {
  agg_label : string;
  mutable count : int;
  sum : Stats.counters;
  mutable max_flushes : int;  (** worst single span *)
  mutable max_fences : int;
  mutable max_movntis : int;
  mutable max_post_flush : int;
}

type t

val create : unit -> t

val stats : t -> Stats.t
(** The per-thread total counters the spans feed — what
    {!Heap.stats} returns, so all pre-span call sites keep working. *)

val record : ?n:int -> t -> kind -> unit
(** Count [n] (default 1) events of [kind] for the calling thread and
    advance its instruction clock.  Called by every {!Heap} primitive. *)

val record_at : ?n:int -> t -> tid:int -> kind -> unit
(** {!record} for a caller that already holds its thread id (the heap
    primitives resolve {!Tid.get} once per primitive, not once per
    counter). *)

val charge_ns : t -> int -> unit
(** Accrue modeled nanoseconds for the calling thread (no clock tick). *)

val charge_ns_at : t -> tid:int -> int -> unit
(** {!charge_ns} with the caller's already-resolved thread id. *)

val open_span : ?exclude:bool -> t -> string -> unit
(** Push a labeled frame on the calling thread's span stack.
    [~exclude:true] marks setup work whose delta enclosing spans must not
    be charged for. *)

val close_span : t -> closed
(** Pop the innermost frame: computes its delta, aggregates it under its
    label, appends it to the trace ring (when tracing), and hands it to
    the sink.  @raise Invalid_argument when no span is open. *)

val with_span : ?exclude:bool -> t -> string -> (unit -> 'a) -> 'a
(** [open_span]; run; [close_span] (also on exception). *)

val with_span1 : ?exclude:bool -> t -> string -> ('a -> 'b) -> 'a -> 'b
(** [with_span] over a one-argument call, passed unapplied: instrumenting
    wrappers use this so each operation does not allocate a closure
    capturing the argument. *)

val event : t -> string -> unit
(** Record a labeled point event at the calling thread's current clock
    tick: sync boundaries, group commits and drain tickets use this so
    the trace timeline shows where persistence was promised relative to
    the op spans.  Instants are retained in the trace ring and passed to
    the sink (with [instant = true] and a zero delta) but never enter the
    per-label aggregates; when neither a ring nor a sink is live, the
    call is one branch. *)

val persist_point : t -> int
(** Advance the global persist-point clock by one tick and return the
    new stamp.  The heap ticks this on every fence it issues: the stamp
    is the timestamp at which the fence's covered effects are guaranteed
    durable, correlating op histories ([Spec.History] inv/res/persist
    triples) with the fences that covered them. *)

val persist_now : t -> int
(** Current persist-point clock (0 before any fence). *)

val depth : t -> int
(** Open spans of the calling thread. *)

val abandon : t -> unit
(** Drop every thread's open frames without closing them (crash support:
    operations in flight at a crash never report).  Totals, aggregates
    and rings are untouched. *)

val set_sink : t -> (closed -> unit) option -> unit
(** Install the single close callback (e.g. a fence auditor). *)

val set_tracing : t -> capacity:int -> unit
(** Retain up to [capacity] closed spans per thread in a ring buffer
    ([0] disables, the default).  Resets previously traced spans. *)

val aggregates : t -> agg list
(** Per-label aggregation merged over all threads, sorted by label. *)

val find_aggregate : t -> string -> agg option

val merge_aggregates : agg list -> agg list
(** Combine entries sharing a label (e.g. the same label across several
    heaps' span trackers): counts and sums add, maxima take the max. *)

val reset_closed : t -> unit
(** Forget closed-span state: aggregates and trace rings.  Open frames,
    clocks and the totals ({!stats}) are untouched — call between a
    warm-up phase and a measured phase. *)

val trace : t -> closed list
(** Retained spans of all threads, ordered by (tid, seq). *)

val export_jsonl : t -> out_channel -> int
(** Write the trace one JSON object per line; returns the span count. *)

val export_chrome : t -> out_channel -> int
(** Write the trace as a Chrome trace-event JSON array (load in
    [chrome://tracing] / Perfetto; [ts] is the per-thread logical
    instruction clock, not wall time); returns the span count. *)
