(** Full-system crash simulation (Section 2's failure model): all threads
    die, cache contents are lost, NVRAM survives.

    Each cache line is truncated to a prefix of its stores (Assumption 1)
    no shorter than its explicitly persisted watermark.  How much beyond
    the watermark survives — modelling implicit cache evictions — is
    controlled by the policy. *)

type policy =
  | Only_persisted
      (** adversarial: only explicitly persisted stores survive *)
  | All_flushed  (** benign: every store reached memory before the crash *)
  | Random_evictions
      (** per line, pick a random prefix between the two extremes *)
  | Torn_prefix
      (** adversarial tearing: per line, at most ONE store beyond the
          persisted watermark survives (chosen by the rng) — the line was
          caught mid-writeback.  Stresses recovery on images where a
          single unfenced store leaks through while its successors on the
          same line are lost. *)

val policy_name : policy -> string
val policy_of_name : string -> policy
(** @raise Invalid_argument on an unknown name. *)

val randomized : policy -> bool
(** Whether the policy draws from an rng ([Random_evictions],
    [Torn_prefix]). *)

type error =
  | Fast_mode_heap of string
      (** crash/soak entry point [op] invoked on a [Fast]-mode heap, which
          keeps no store logs to truncate *)
  | Missing_rng of string
      (** a randomized policy was requested without an explicit rng: every
          adversary draw must be seeded by the caller so the eviction
          choices are logged and replayable *)

exception Error of error

val error_message : error -> string

val crash : ?rng:Random.State.t -> ?policy:policy -> Heap.t -> unit
(** Crash the machine.  The heap must be in [Checked] mode and all
    application threads must have been stopped.  Afterwards the heap
    contains exactly the surviving NVRAM image; run the data structure's
    recovery procedure (and {!Tid.reset}) before resuming operations.

    [policy] defaults to [Random_evictions].  Randomized policies
    ({!randomized}) require [rng]: there is no implicit default seed, so
    callers must thread (and log) an explicit one — two unseeded crashes
    silently replaying the same eviction adversary was a bug.

    @raise Error [(Fast_mode_heap _)] on a [Fast]-mode heap.
    @raise Error [(Missing_rng _)] when a randomized policy lacks [rng]. *)

val crash_seeded : seed:int -> ?policy:policy -> Heap.t -> unit
(** [crash ~rng:(Random.State.make [| seed |])], for call sites that log
    the integer seed for replay. *)
