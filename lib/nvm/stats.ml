(* Per-thread instrumentation counters for the simulated NVRAM.

   The evaluation needs exact persist-instruction counts per operation (the
   paper's claims: one SFENCE per operation for the four new queues, zero
   accesses to flushed content for the Opt variants).  Every primitive of
   {!Heap} bumps these counters for the calling thread. *)

type counters = {
  mutable reads : int;
  mutable writes : int;
  mutable cas : int;
  mutable flushes : int;  (* asynchronous cache-line flushes issued *)
  mutable fences : int;  (* blocking SFENCEs *)
  mutable movntis : int;  (* non-temporal stores issued *)
  mutable post_flush_reads : int;  (* loads hitting an invalidated line *)
  mutable post_flush_writes : int;  (* stores hitting an invalidated line *)
  mutable modelled_ns : int;  (* synthetic nanoseconds this thread accrued *)
  (* Tail padding: per-thread records are allocated back to back by
     [create], and every primitive of the hot path bumps them; without a
     cache line of cold words between one thread's fields and the next
     thread's, neighbouring tids invalidate each other's line on every
     counted instruction. *)
  mutable pad_0 : int;
  mutable pad_1 : int;
  mutable pad_2 : int;
  mutable pad_3 : int;
  mutable pad_4 : int;
  mutable pad_5 : int;
  mutable pad_6 : int;
  mutable pad_7 : int;
}

type t = counters array

let zero () =
  {
    reads = 0;
    writes = 0;
    cas = 0;
    flushes = 0;
    fences = 0;
    movntis = 0;
    post_flush_reads = 0;
    post_flush_writes = 0;
    modelled_ns = 0;
    pad_0 = 0;
    pad_1 = 0;
    pad_2 = 0;
    pad_3 = 0;
    pad_4 = 0;
    pad_5 = 0;
    pad_6 = 0;
    pad_7 = 0;
  }

let create () = Array.init Tid.max_threads (fun _ -> zero ())

let get (t : t) tid = t.(tid)

let copy c = { c with reads = c.reads }

(* In-place copy: the span spine snapshots baselines into preallocated
   records so steady-state operation spans allocate nothing. *)
let blit ~src ~dst =
  dst.reads <- src.reads;
  dst.writes <- src.writes;
  dst.cas <- src.cas;
  dst.flushes <- src.flushes;
  dst.fences <- src.fences;
  dst.movntis <- src.movntis;
  dst.post_flush_reads <- src.post_flush_reads;
  dst.post_flush_writes <- src.post_flush_writes;
  dst.modelled_ns <- src.modelled_ns

let snapshot (t : t) = Array.map copy t

let add acc c =
  acc.reads <- acc.reads + c.reads;
  acc.writes <- acc.writes + c.writes;
  acc.cas <- acc.cas + c.cas;
  acc.flushes <- acc.flushes + c.flushes;
  acc.fences <- acc.fences + c.fences;
  acc.movntis <- acc.movntis + c.movntis;
  acc.post_flush_reads <- acc.post_flush_reads + c.post_flush_reads;
  acc.post_flush_writes <- acc.post_flush_writes + c.post_flush_writes;
  acc.modelled_ns <- acc.modelled_ns + c.modelled_ns

let total (t : t) =
  let acc = zero () in
  Array.iter (add acc) t;
  acc

(* [sub_into dst a b] stores a - b in [dst] (allocation-free). *)
let sub_into dst a b =
  dst.reads <- a.reads - b.reads;
  dst.writes <- a.writes - b.writes;
  dst.cas <- a.cas - b.cas;
  dst.flushes <- a.flushes - b.flushes;
  dst.fences <- a.fences - b.fences;
  dst.movntis <- a.movntis - b.movntis;
  dst.post_flush_reads <- a.post_flush_reads - b.post_flush_reads;
  dst.post_flush_writes <- a.post_flush_writes - b.post_flush_writes;
  dst.modelled_ns <- a.modelled_ns - b.modelled_ns

let sub a b =
  let d = zero () in
  sub_into d a b;
  d

(* Totals accumulated since [since] was snapshotted. *)
let diff_total (t : t) ~(since : t) = sub (total t) (total since)

let reset (t : t) =
  Array.iter
    (fun c ->
      c.reads <- 0;
      c.writes <- 0;
      c.cas <- 0;
      c.flushes <- 0;
      c.fences <- 0;
      c.movntis <- 0;
      c.post_flush_reads <- 0;
      c.post_flush_writes <- 0;
      c.modelled_ns <- 0)
    t

let post_flush_accesses c = c.post_flush_reads + c.post_flush_writes

(* -- Heap occupancy -------------------------------------------------------

   Region-granularity accounting for the checkpoint/compaction subsystem:
   how many regions the heap has ever handed out, how many were retired
   back ([Heap.free_region]), and the word totals behind both.  Unlike the
   per-thread persist counters these are bumped under the heap's region
   lock, so a single shared record suffices. *)

type occupancy = {
  mutable regions_allocated : int;  (* alloc_region calls, incl. recycled *)
  mutable regions_retired : int;  (* free_region calls *)
  mutable words_allocated : int;  (* line-rounded words handed out *)
  mutable words_reclaimed : int;  (* words returned by free_region *)
}

let occupancy_zero () =
  {
    regions_allocated = 0;
    regions_retired = 0;
    words_allocated = 0;
    words_reclaimed = 0;
  }

let occupancy_copy (o : occupancy) =
  { o with regions_allocated = o.regions_allocated }

let live_regions o = o.regions_allocated - o.regions_retired
let live_words o = o.words_allocated - o.words_reclaimed

let pp_occupancy ppf o =
  Format.fprintf ppf
    "regions live=%d allocated=%d retired=%d; words live=%d reclaimed=%d"
    (live_regions o) o.regions_allocated o.regions_retired (live_words o)
    o.words_reclaimed

let pp ppf c =
  Format.fprintf ppf
    "reads=%d writes=%d cas=%d flushes=%d fences=%d movntis=%d post_flush=%d+%d modelled=%dns"
    c.reads c.writes c.cas c.flushes c.fences c.movntis c.post_flush_reads
    c.post_flush_writes c.modelled_ns

(* Per-operation averages for the persist-instruction census tables. *)
let per_op c ~ops =
  let f x = if ops = 0 then 0. else float_of_int x /. float_of_int ops in
  ( f c.flushes,
    f c.fences,
    f c.movntis,
    f (post_flush_accesses c) )
