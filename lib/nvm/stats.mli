(** Per-thread instrumentation counters for the simulated NVRAM.

    Used by the persist-instruction census (experiment TAB-FENCES /
    TAB-POSTFLUSH in DESIGN.md) to verify the paper's claims: one blocking
    fence per operation for the four new queues and zero accesses to
    flushed content for OptUnlinkedQ/OptLinkedQ. *)

type counters = {
  mutable reads : int;
  mutable writes : int;
  mutable cas : int;
  mutable flushes : int;  (** asynchronous cache-line flushes issued *)
  mutable fences : int;  (** blocking SFENCEs *)
  mutable movntis : int;  (** non-temporal stores issued *)
  mutable post_flush_reads : int;  (** loads hitting an invalidated line *)
  mutable post_flush_writes : int;  (** stores hitting an invalidated line *)
  mutable modelled_ns : int;  (** synthetic nanoseconds accrued *)
  mutable pad_0 : int;
      (** [pad_*] are contention insulation, not data: per-thread records
          sit back to back in a {!t}, and the hot path bumps them on every
          counted instruction, so a cache line of cold tail words keeps
          neighbouring thread ids off each other's line.  Always 0. *)
  mutable pad_1 : int;
  mutable pad_2 : int;
  mutable pad_3 : int;
  mutable pad_4 : int;
  mutable pad_5 : int;
  mutable pad_6 : int;
  mutable pad_7 : int;
}

type t = counters array
(** One [counters] record per thread id. *)

val zero : unit -> counters
val create : unit -> t

val get : t -> int -> counters
(** [get t tid] is thread [tid]'s counters (shared mutable record). *)

val copy : counters -> counters

val blit : src:counters -> dst:counters -> unit
(** In-place copy into an existing record (allocation-free snapshots). *)

val snapshot : t -> t

val total : t -> counters
(** Sum over all threads. *)

val add : counters -> counters -> unit
(** [add acc c] accumulates [c] into [acc] in place. *)

val sub : counters -> counters -> counters

val sub_into : counters -> counters -> counters -> unit
(** [sub_into dst a b] stores [a - b] in [dst] without allocating. *)

val diff_total : t -> since:t -> counters
(** Totals accumulated since [since] was snapshotted. *)

val reset : t -> unit

val post_flush_accesses : counters -> int
(** Accesses to explicitly flushed content (reads + writes). *)

(** {2 Heap occupancy}

    Region-granularity accounting for the checkpoint/compaction subsystem:
    regions/words ever allocated vs retired back to the heap
    ({!Heap.free_region}).  Bumped under the heap's region lock — one
    shared record per heap, not per thread. *)

type occupancy = {
  mutable regions_allocated : int;
      (** [alloc_region] calls, including recycled ids. *)
  mutable regions_retired : int;  (** [free_region] calls. *)
  mutable words_allocated : int;  (** line-rounded words handed out. *)
  mutable words_reclaimed : int;  (** words returned by [free_region]. *)
}

val occupancy_zero : unit -> occupancy
val occupancy_copy : occupancy -> occupancy

val live_regions : occupancy -> int
(** Regions currently allocated (allocated - retired). *)

val live_words : occupancy -> int
(** Words currently allocated (allocated - reclaimed). *)

val pp_occupancy : Format.formatter -> occupancy -> unit

val pp : Format.formatter -> counters -> unit

val per_op : counters -> ops:int -> float * float * float * float
(** [(flushes, fences, movntis, post-flush accesses)] per operation. *)
