(* Synthetic latency model for the simulated NVRAM.

   The paper's central finding is that the *cost profile* of persist
   instructions drives durable-queue performance: an SFENCE blocks until
   outstanding flushes drain, and a flush invalidates its cache line so that
   the next access pays an NVRAM read miss (~300 ns on Optane, per the
   measurements the paper cites [50,55]).  We reproduce that profile with
   calibrated busy-wait delays so the benchmarked algorithms feel the same
   relative costs they would on a Cascade Lake + Optane platform. *)

type config = {
  enabled : bool;  (* charge delays (benchmarks) or only count (tests) *)
  nvm_read_ns : int;  (* load from an invalidated (flushed) line *)
  nvm_write_ns : int;  (* store to an invalidated line: fetch-on-write *)
  flush_issue_ns : int;  (* issuing an asynchronous CLWB *)
  fence_base_ns : int;  (* SFENCE with nothing outstanding *)
  fence_per_flush_ns : int;  (* draining one outstanding flush to the DIMM *)
  fence_per_movnti_ns : int;  (* draining one outstanding non-temporal store *)
  movnti_issue_ns : int;  (* issuing a movnti *)
  fence_contention : bool;
      (* DIMM write-bandwidth sharing: an SFENCE's drain portion scales
         with the number of threads fencing on the same heap (an Optane
         DIMM's write bandwidth saturates at very few writers).  This is
         the cost sharding across heaps removes. *)
  drain_wall : bool;
      (* Charge the drain portion of a fence as *wall-clock elapsed time*
         (the issuing domain sleeps to a deadline) instead of a CPU
         busy-wait.  The drain is the DIMM's work, not the core's: a
         sleeping domain yields the core, so concurrent drains on
         *different* heaps genuinely overlap even on a single-core host,
         while drains queueing on the *same* heap serialize through the
         in-flight sharing factor.  This is the profile under which the
         shard sweep's wall series can express device-bound scaling at
         all on an oversubscribed machine. *)
}

(* Defaults follow published Optane DC characterisation: ~300 ns random read
   latency, ~100 ns to drain a write-back into the ADR domain, small issue
   costs for the asynchronous instructions themselves. *)
let default =
  {
    enabled = true;
    nvm_read_ns = 300;
    nvm_write_ns = 300;
    flush_issue_ns = 20;
    fence_base_ns = 30;
    fence_per_flush_ns = 100;
    fence_per_movnti_ns = 60;
    movnti_issue_ns = 10;
    fence_contention = true;
    drain_wall = false;
  }

(* Counting-only mode: persist instructions and post-flush accesses are
   tallied in {!Stats} but no time is charged.  Used by the test suites. *)
let off =
  {
    enabled = false;
    nvm_read_ns = 0;
    nvm_write_ns = 0;
    flush_issue_ns = 0;
    fence_base_ns = 0;
    fence_per_flush_ns = 0;
    fence_per_movnti_ns = 0;
    movnti_issue_ns = 0;
    fence_contention = false;
    drain_wall = false;
  }

(* Model-only mode: Optane costs accrue in the deterministic modeled-time
   counters ({!Stats.counters.modelled_ns}) but no wall-clock busy-wait is
   charged.  The right setting for modeled-throughput sweeps on hosts with
   fewer cores than worker domains, where busy-waiting would only add
   scheduler noise. *)
let model_only = { default with enabled = false }

(* Ablation: a platform whose flushes do not invalidate cache lines (the
   hypothetical Ice Lake CLWB of Section 6).  Persist costs remain; the
   post-flush access penalty disappears. *)
let no_invalidation = { default with nvm_read_ns = 0; nvm_write_ns = 0 }

(* Device-bound wall profile: only the fence *drain* has a cost, it is
   scaled up into sleepable territory (hundreds of microseconds, well
   above the kernel's ~50 us timer slack so sleep durations stay
   proportional), and it elapses as wall-clock sleep rather than CPU
   burn.  Core-side costs (read misses, issue costs, fence base) are
   zeroed: the profile isolates the resource that sharding multiplies —
   DIMM drain bandwidth — so the shard sweep's wall series measures
   device-bound scaling instead of single-core code-path cost.  The
   x2000 scale makes each drained flush 200 us: a slow simulated DIMM,
   deliberately, so the series is sleep-dominated and reproducible on a
   noisy shared host. *)
let dimm_wall =
  {
    default with
    nvm_read_ns = 0;
    nvm_write_ns = 0;
    flush_issue_ns = 0;
    fence_base_ns = 0;
    fence_per_flush_ns = 200_000;
    fence_per_movnti_ns = 120_000;
    movnti_issue_ns = 0;
    drain_wall = true;
  }

(* Sleep (not spin) until an absolute [Unix.gettimeofday] deadline.
   [Unix.sleepf] typically oversleeps (timer slack), so the loop rarely
   iterates twice; it exists because sleeps can be cut short. *)
let sleep_until deadline =
  let rec loop () =
    let now = Unix.gettimeofday () in
    if now < deadline then begin
      (try Unix.sleepf (deadline -. now) with Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ()

(* Calibration: measure how many [Domain.cpu_relax] iterations one
   nanosecond buys.  Computed once at module initialisation, which runs on a
   single domain before any worker starts. *)
let iters_per_ns =
  let calibrate () =
    let trial n =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to n do
        Domain.cpu_relax ()
      done;
      let t1 = Unix.gettimeofday () in
      (t1 -. t0) *. 1e9
    in
    (* Warm up, then time a batch large enough for the clock resolution. *)
    ignore (trial 10_000);
    let n = 2_000_000 in
    let ns = trial n in
    if ns <= 0. then 1.0 else float_of_int n /. ns
  in
  calibrate ()

let spin_ns ns =
  if ns > 0 then begin
    let iters = int_of_float (float_of_int ns *. iters_per_ns) in
    for _ = 1 to iters do
      Domain.cpu_relax ()
    done
  end

let charge cfg ns = if cfg.enabled then spin_ns ns

let pp ppf cfg =
  Format.fprintf ppf
    "latency{enabled=%b read=%dns write=%dns flush=%dns \
     fence=%d+%d/flush+%d/movnti ns contended=%b}"
    cfg.enabled cfg.nvm_read_ns cfg.nvm_write_ns cfg.flush_issue_ns
    cfg.fence_base_ns cfg.fence_per_flush_ns cfg.fence_per_movnti_ns
    cfg.fence_contention
