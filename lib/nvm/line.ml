(* Cache-line metadata for the simulated NVRAM.

   A line groups [words_per_line] consecutive words.  The simulation tracks,
   per line:

   - [invalid]: the line was written back by an explicit flush (or movnti)
     and evicted from the cache, so the next ordinary access pays an NVRAM
     miss.  This models the Cascade Lake behaviour central to the paper.

   - In checked mode, a total order of stores ([version]), the watermark of
     stores guaranteed persistent ([persisted]), and a replayable store log
     over a base image.  A crash materialises the line as [base] plus some
     prefix of the log no shorter than the watermark — exactly Assumption 1
     of the paper (a line's memory content reflects a prefix of its
     stores).

   Synchronisation: the checked-mode fields are guarded by a seqlock-style
   versioned spinlock ([seq]: even = free, odd = a writer inside) instead
   of a [Mutex].  The critical sections are a handful of word stores, so
   writers that do collide on a hot line spin in user space for a few
   cycles rather than parking on a futex, and the uncontended store path is
   one CAS + one plain store instead of two futex transitions.  Readers
   that only need a consistent snapshot ([read_versions]) use the seqlock
   read protocol and take no lock at all.

   The store log is a packed int array ([log_buf]/[log_len]: three slots
   per store — version, word offset, value) grown by doubling and reset by
   compaction, so steady-state checked-mode stores allocate nothing. *)

let words_per_line = 8
let line_shift = 3

type store = { ver : int; off : int; value : int }
(* [off] is the word index within the line.  Exposed view of a log slot;
   the log itself is packed (see below). *)

type t = {
  invalid : bool Atomic.t;
  seq : int Atomic.t;  (* versioned spinlock guarding the fields below *)
  mutable version : int;  (* total stores so far (monotone) *)
  mutable persisted : int;  (* stores <= persisted are surely in NVRAM *)
  mutable base_version : int;  (* [base] reflects stores <= base_version *)
  mutable log_len : int;  (* used slots in [log_buf] (multiple of 3) *)
  mutable log_buf : int array;  (* ver,off,value triples, oldest first *)
  mutable base : int array;  (* empty in fast mode *)
}

let create ~checked =
  {
    invalid = Atomic.make false;
    seq = Atomic.make 0;
    version = 0;
    persisted = 0;
    base_version = 0;
    log_len = 0;
    log_buf = [||];
    base = (if checked then Array.make words_per_line 0 else [||]);
  }

(* -- Versioned spinlock --------------------------------------------------- *)

let rec lock t =
  let s = Atomic.get t.seq in
  if s land 1 <> 0 || not (Atomic.compare_and_set t.seq s (s + 1)) then begin
    Domain.cpu_relax ();
    lock t
  end

let unlock t = Atomic.incr t.seq

(* Consistent snapshot of (persisted, version) without taking the lock:
   retry while a writer holds the odd sequence or slips in between the
   two fence reads. *)
let rec read_versions t =
  let s0 = Atomic.get t.seq in
  if s0 land 1 <> 0 then begin
    Domain.cpu_relax ();
    read_versions t
  end
  else begin
    let p = t.persisted and v = t.version in
    if Atomic.get t.seq = s0 then (p, v)
    else begin
      Domain.cpu_relax ();
      read_versions t
    end
  end

(* -- Store log ------------------------------------------------------------ *)

let initial_log_slots = 3 * 8

(* Append a store to the packed log.  Caller holds [lock]; zero allocation
   once the buffer has grown to the line's working-set size. *)
let log_store t ~off ~value =
  t.version <- t.version + 1;
  let len = t.log_len in
  if len + 3 > Array.length t.log_buf then begin
    let grown =
      Array.make (max initial_log_slots (2 * Array.length t.log_buf)) 0
    in
    Array.blit t.log_buf 0 grown 0 len;
    t.log_buf <- grown
  end;
  t.log_buf.(len) <- t.version;
  t.log_buf.(len + 1) <- off land (words_per_line - 1);
  t.log_buf.(len + 2) <- value;
  t.log_len <- len + 3

(* The log as store records, oldest first (tests, debugging).  Caller
   holds [lock] or has quiesced all writers. *)
let log_entries t =
  List.init (t.log_len / 3) (fun i ->
      {
        ver = t.log_buf.(3 * i);
        off = t.log_buf.((3 * i) + 1);
        value = t.log_buf.((3 * i) + 2);
      })

(* Image of the line as it would appear in NVRAM if exactly the stores with
   version <= [target] had reached memory.  Caller holds [lock]. *)
let image_at t ~target =
  let img = Array.copy t.base in
  let i = ref 0 in
  while !i < t.log_len && t.log_buf.(!i) <= target do
    img.(t.log_buf.(!i + 1)) <- t.log_buf.(!i + 2);
    i := !i + 3
  done;
  img

(* Drop the log once everything in it is persistent; the current word values
   become the new base image.  Caller holds [lock] and passes the line's
   current word values. *)
let compact t ~current =
  if t.persisted >= t.version && t.log_len > 0 then begin
    Array.blit current 0 t.base 0 words_per_line;
    t.base_version <- t.version;
    t.log_len <- 0
  end
