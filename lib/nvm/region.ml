(* A contiguous allocation of simulated NVRAM.

   Regions play the role of the paper's "designated areas": the memory
   manager allocates queue nodes from [Node_area] regions, and recovery
   procedures scan exactly those regions looking for valid nodes.  The
   [tag] lets recovery distinguish node areas from queue metadata,
   per-thread persistent slots and transaction logs. *)

type tag = Node_area | Meta | Thread_local | Log_area | Ckpt_image

type t = {
  id : int;  (* region id; addresses are [id lsl 24 lor offset] *)
  tag : tag;
  owner : int option;  (* owning thread for per-thread areas *)
  words : int Atomic.t array;
  lines : Line.t array;
}

(* Placeholder for unallocated region-table slots: {!Heap.region_of} is an
   unconditional array load plus one id comparison (no [option] box to
   match on the hot path); the sentinel's id never equals a slot index. *)
let sentinel =
  { id = -1; tag = Meta; owner = None; words = [||]; lines = [||] }

let is_sentinel t = t.id < 0

let n_words t = Array.length t.words
let n_lines t = Array.length t.lines
let base_addr t = t.id lsl 24
let line_addr t i = base_addr t + (i lsl Line.line_shift)

let tag_to_string = function
  | Node_area -> "node-area"
  | Meta -> "meta"
  | Thread_local -> "thread-local"
  | Log_area -> "log-area"
  | Ckpt_image -> "ckpt-image"
