(* The sharded durable broker: scaling the paper's 1-fence queues out.

   A single durable queue is bounded by its DIMM's fence-drain bandwidth:
   every producer's SFENCE drains into the same device.  The broker
   composes N independent shards — each a paper queue on its own heap
   (its own simulated DIMM) — behind one API:

   - a producer's stream is pinned to one shard, so per-producer FIFO
     order survives sharding;
   - batched enqueues amortize the one-fence-per-operation persist cost
     to one fence per batch per shard;
   - per-shard depth bounds surface backpressure (Overflow) to callers
     instead of growing NVM without bound;
   - a full-system crash is recovered by re-running every shard's
     recovery, in parallel across domains, each validated against the
     durable-linearizability conditions before the service resumes.

     dune exec examples/sharded_broker.exe *)

let () =
  ignore (Nvm.Tid.register ());
  let service =
    Broker.Service.create ~algorithm:"OptUnlinkedQ" ~shards:4
      ~policy:Broker.Routing.Round_robin ~depth_bound:256 ()
  in

  (* Four producer streams publish batches; streams 0-3 pin to shards
     round-robin, so each stream's items stay FIFO on its shard. *)
  let before = Broker.Census.snapshot service in
  let per_stream = 96 and batch = 8 in
  for stream = 0 to 3 do
    let seq = ref 1 in
    while !seq <= per_stream do
      let items =
        List.init batch (fun i ->
            Spec.Durable_check.encode ~producer:stream ~seq:(!seq + i))
      in
      seq := !seq + batch;
      match Broker.Service.enqueue_batch service ~stream items with
      | _, Broker.Backpressure.Accepted -> ()
      | _, v -> failwith (Broker.Backpressure.verdict_name v)
    done
  done;
  let ops = 4 * per_stream in
  let census = Broker.Census.since service before in
  Printf.printf "published %d messages on 4 streams: %.3f fences/op\n" ops
    (Broker.Census.fences_per_op census ~ops);
  assert (Result.is_ok (Broker.Census.audit census ~ops));

  (* Backpressure: stream 4 pins to shard 0 (round-robin wraps) and hits
     its 256-slot bound. *)
  let accepted, verdict =
    Broker.Service.enqueue_batch service ~stream:4
      (List.init 400 (fun i -> Spec.Durable_check.encode ~producer:4 ~seq:(i + 1)))
  in
  Printf.printf "stream 4 burst of 400: accepted %d, verdict %s\n" accepted
    (Broker.Backpressure.verdict_name verdict);
  assert (verdict = Broker.Backpressure.Overflow);

  (* Pull the plug on the whole system; recover every shard in parallel
     and validate before serving again. *)
  let report =
    Broker.Recovery.crash_and_recover ~rng:(Random.State.make [| 7 |])
      ~domains:2 ~producer_of:Spec.Durable_check.producer_of service
  in
  Broker.Recovery.pp Format.std_formatter report;
  assert (Broker.Recovery.ok report);

  (* Per-producer FIFO survived: stream 2's head is its oldest items. *)
  (match Broker.Service.dequeue_batch service ~stream:2 ~max:4 with
  | Broker.Service.Items items ->
      Printf.printf "stream 2 head after recovery:%s\n"
        (String.concat ""
           (List.filter_map
              (fun v ->
                if Spec.Durable_check.producer_of v = 2 then
                  Some (Printf.sprintf " #%d" (Spec.Durable_check.seq_of v))
                else None)
              items))
  | Broker.Service.Busy_batch | Broker.Service.Unavailable_batch -> assert false);
  print_endline "sharded broker demo: OK"
