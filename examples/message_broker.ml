(* A persistent message broker — the workload that motivates the paper's
   introduction (IBM MQ, Oracle Tuxedo MQ, RabbitMQ persist their queues;
   NVRAM-native durable queues replace their block-device persistence).

   Topics are durable queues of message handles; message payloads live in
   a persistent value arena ({!Dq.Value_store}).  A payload write does not
   fence: its flushes drain at the enqueue's single SFENCE, so publishing
   a message costs exactly one blocking persist — the paper's bound —
   end-to-end.

   The demo runs producers and consumers concurrently, pulls the plug
   mid-stream, recovers, then drains the topics and verifies that every
   published-and-acknowledged message is either consumed exactly once or
   still queued, in publication order per producer.

     dune exec examples/message_broker.exe *)

type topic = {
  name : string;
  queue : Dq.Queue_intf.instance;
  store : Dq.Value_store.t;
}

let publish topic ~producer ~seq payload =
  let handle =
    Dq.Value_store.put topic.store
      (Printf.sprintf "p%d:%d:%s" producer seq payload)
  in
  (* The enqueue's single fence persists the payload flushes too. *)
  topic.queue.Dq.Queue_intf.enqueue handle

let consume topic =
  Option.map (Dq.Value_store.get topic.store) (topic.queue.Dq.Queue_intf.dequeue ())

let parse msg =
  Scanf.sscanf msg "p%d:%d:%s" (fun p s payload -> (p, s, payload))

let () =
  ignore (Nvm.Tid.register ());
  let heap = Nvm.Heap.create ~mode:Nvm.Heap.Checked () in
  let make_topic name =
    {
      name;
      queue = (Dq.Registry.find "OptLinkedQ").Dq.Registry.make heap;
      store = Dq.Value_store.create heap;
    }
  in
  let orders = make_topic "orders" in
  let audit = make_topic "audit" in

  let nproducers = 2 and per_producer = 120 in
  let consumed = Atomic.make [] in
  let published = Array.make nproducers 0 in
  let producers =
    List.init nproducers (fun p ->
        Domain.spawn (fun () ->
            Nvm.Tid.set (1 + p);
            for seq = 1 to per_producer do
              publish orders ~producer:p ~seq "order-payload";
              publish audit ~producer:p ~seq "audit-trail";
              published.(p) <- seq
            done))
  in
  let stop = Atomic.make false in
  let consumer =
    Domain.spawn (fun () ->
        Nvm.Tid.set (1 + nproducers);
        let rec loop () =
          (match consume orders with
          | Some msg ->
              let rec push () =
                let cur = Atomic.get consumed in
                if not (Atomic.compare_and_set consumed cur (msg :: cur)) then
                  push ()
              in
              push ()
          | None -> ());
          if not (Atomic.get stop) then loop ()
        in
        loop ())
  in
  List.iter Domain.join producers;
  Atomic.set stop true;
  Domain.join consumer;
  let consumed_before = List.length (Atomic.get consumed) in
  Printf.printf "published %d messages per topic, consumed %d orders\n"
    (nproducers * per_producer) consumed_before;

  (* --- power failure ---------------------------------------------------- *)
  Printf.printf "simulating power failure...\n";
  Nvm.Crash.crash ~rng:(Random.State.make [| 0x5EED |])
    ~policy:Nvm.Crash.Random_evictions heap;
  Nvm.Tid.reset ();
  ignore (Nvm.Tid.register ());
  orders.queue.Dq.Queue_intf.recover ();
  audit.queue.Dq.Queue_intf.recover ();

  (* Drain both topics and account for every message. *)
  let drain topic =
    let rec go acc = match consume topic with
      | Some m -> go (m :: acc)
      | None -> List.rev acc
    in
    go []
  in
  let remaining_orders = drain orders in
  let remaining_audit = drain audit in
  Printf.printf "recovered: %d orders still queued, %d audit records\n"
    (List.length remaining_orders)
    (List.length remaining_audit);

  (* Verification: per producer, consumed ++ remaining covers 1..published
     in order, with no loss and no duplication. *)
  let seen = Hashtbl.create 64 in
  let check_stream msgs =
    List.iter
      (fun m ->
        let p, s, _ = parse m in
        if Hashtbl.mem seen (p, s) then failwith "duplicate delivery";
        Hashtbl.replace seen (p, s) ())
      msgs
  in
  check_stream (List.rev (Atomic.get consumed));
  check_stream remaining_orders;
  for p = 0 to nproducers - 1 do
    for seq = 1 to published.(p) do
      if not (Hashtbl.mem seen (p, seq)) then
        failwith
          (Printf.sprintf "message p%d:%d lost after crash recovery" p seq)
    done
  done;
  (* The audit topic must hold each producer's records as an in-order
     suffix-complete stream. *)
  let last = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let p, s, _ = parse m in
      let prev = Option.value ~default:0 (Hashtbl.find_opt last p) in
      if s <= prev then failwith "audit order violated";
      Hashtbl.replace last p s)
    remaining_audit;
  Printf.printf
    "OK: every acknowledged message survived exactly once, in order.\n"
