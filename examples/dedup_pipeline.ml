(* An exactly-once delivery pipeline over the durable broker.

   Real producers retry: an acknowledgment can be lost to a crash or a
   dropped connection even when the publish itself survived, and a
   producer that cannot tell must send the item again.  Plain queues
   then deliver duplicates.  This demo composes the broker's durable
   keyed-store tier ({!Broker.Offsets}: per-shard durable hash maps for
   a producer dedup index and consumer-group commit offsets) with the
   durable queue shards to absorb them at both ends:

   - [Broker.Service.enqueue_once] refuses a sequence the dedup index
     already recorded — the common retry case costs one durable-map
     lookup and no queue traffic;
   - [Broker.Service.dequeue_committed] durably commits each delivered
     sequence and drops anything at or below the commit offset — the
     rare crash-window duplicate (enqueued, then crashed before the
     dedup record) dies here, before the consumer sees it.

   The demo publishes with deliberate duplicate retries, pulls the plug
   twice mid-pipeline, lets the producers blindly retry everything after
   each recovery, and verifies at the end that every sequence was
   delivered to the consumer group exactly once.

     dune exec examples/dedup_pipeline.exe *)

let producers = 4
let seqs_per_producer = 300
let group = 1

let () =
  ignore (Nvm.Tid.register ());
  let service = Broker.Service.create ~shards:2 ~offsets:true () in
  let off = Option.get (Broker.Service.offsets service) in
  Printf.printf "broker: 2 shards + durable offset maps (%s)\n"
    (Broker.Offsets.map_name off);

  (* Publish with a flaky network: every item is sent, and a third of
     the time the "lost ack" makes the producer send it again. *)
  let rng = Random.State.make [| 2021 |] in
  let publish ~from =
    let fresh = ref 0 and dups = ref 0 in
    for producer = 0 to producers - 1 do
      for seq = from to seqs_per_producer do
        let item = Spec.Durable_check.encode ~producer ~seq in
        let send () =
          match Broker.Service.enqueue_once service ~stream:producer item with
          | Broker.Service.Enqueued -> incr fresh
          | Broker.Service.Duplicate -> incr dups
          | Broker.Service.Rejected v ->
              failwith (Broker.Backpressure.verdict_name v)
        in
        send ();
        if Random.State.int rng 3 = 0 then send () (* retry after lost ack *)
      done
    done;
    Printf.printf "published: %d accepted, %d duplicate retries refused\n"
      !fresh !dups
  in
  publish ~from:1;

  let delivered = Hashtbl.create 256 in
  let consume ~per_stream =
    for stream = 0 to producers - 1 do
      let n = ref 0 in
      while !n < per_stream do
        match Broker.Service.dequeue_committed service ~stream ~group with
        | Broker.Service.Item v ->
            let key =
              (Spec.Durable_check.producer_of v, Spec.Durable_check.seq_of v)
            in
            if Hashtbl.mem delivered key then
              failwith
                (Printf.sprintf "duplicate delivery: producer %d seq %d"
                   (fst key) (snd key));
            Hashtbl.add delivered key ();
            incr n
        | Broker.Service.Empty -> n := per_stream
        | _ -> failwith "unexpected dequeue verdict"
      done
    done
  in
  consume ~per_stream:(seqs_per_producer / 2);
  Printf.printf "consumed %d items, committing each delivery\n"
    (Hashtbl.length delivered);

  (* Pull the plug, recover, and let every producer blindly re-send its
     whole history — the durable dedup index survived the crash. *)
  let crash seed =
    let report =
      Broker.Recovery.crash_and_recover
        ~rng:(Random.State.make [| seed |])
        ~producer_of:Spec.Durable_check.producer_of service
    in
    if not (Broker.Recovery.ok report) then failwith "recovery failed";
    Printf.printf "crash + recovery: queues and offset maps rebuilt\n"
  in
  crash 1;
  publish ~from:1 (* all refused: nothing re-enters the queues *);
  consume ~per_stream:(seqs_per_producer / 4);
  crash 2;
  consume ~per_stream:max_int (* drain *);

  (* Exactly once, end to end: each sequence delivered once, none lost. *)
  assert (Hashtbl.length delivered = producers * seqs_per_producer);
  for producer = 0 to producers - 1 do
    for seq = 1 to seqs_per_producer do
      assert (Hashtbl.mem delivered (producer, seq))
    done
  done;
  (match Broker.Census.strict_audit service with
  | Ok () -> ()
  | Error e -> failwith e);
  Printf.printf
    "OK: %d sequences delivered exactly once across 2 crashes (and every \
     queue/map operation span stayed within its persist bound)\n"
    (Hashtbl.length delivered)
