(* A crash-restartable job scheduler built on the typed durable queue —
   the "process persistent data" application class the paper's
   introduction motivates.

   Jobs are typed OCaml records enqueued durably.  Workers take a job,
   execute it, and append the job id to a durable completion log (itself a
   durable queue used as an append-only log).  The machine loses power
   mid-run; after recovery the scheduler re-submits nothing: pending jobs
   are still queued, completed jobs are in the log, and the only
   acceptable anomaly is re-execution of jobs taken but not yet logged
   (at-least-once semantics — exactly what a durable queue + durable log
   give you without a transaction across both).

     dune exec examples/job_scheduler.exe *)

type job = { id : int; cmd : string }

module Jobs = Dq.Typed_queue.Make (Dq.Typed_queue.Marshal_codec (struct
  type t = job
end))

let () =
  ignore (Nvm.Tid.register ());
  let heap = Nvm.Heap.create ~mode:Nvm.Heap.Checked () in
  let jobs = Jobs.create ~algorithm:"OptUnlinkedQ" heap in
  let completions = (Dq.Registry.find "OptLinkedQ").Dq.Registry.make heap in

  let njobs = 200 in
  for id = 1 to njobs do
    Jobs.enqueue jobs { id; cmd = Printf.sprintf "transcode --input part%d" id }
  done;
  Printf.printf "submitted %d jobs\n" njobs;

  (* Phase 1: workers process some of the queue, then the power fails. *)
  let process_one () =
    match Jobs.dequeue jobs with
    | None -> false
    | Some job ->
        (* ... run job.cmd ... *)
        completions.Dq.Queue_intf.enqueue job.id;
        true
  in
  let stop = Atomic.make false in
  let workers =
    List.init 2 (fun w ->
        Domain.spawn (fun () ->
            Nvm.Tid.set (1 + w);
            let n = ref 0 in
            while (not (Atomic.get stop)) && !n < 60 do
              if process_one () then incr n
            done))
  in
  List.iter Domain.join workers;
  Printf.printf "power failure after %d completions...\n"
    (List.length (completions.Dq.Queue_intf.to_list ()));
  Nvm.Crash.crash ~rng:(Random.State.make [| 0x5EED |])
    ~policy:Nvm.Crash.Random_evictions heap;

  (* Phase 2: restart — recover both structures and drain the queue. *)
  Nvm.Tid.reset ();
  ignore (Nvm.Tid.register ());
  Jobs.recover jobs;
  completions.Dq.Queue_intf.recover ();
  let done_before = completions.Dq.Queue_intf.to_list () in
  let pending = List.length (Jobs.to_list jobs) in
  Printf.printf "restart: %d completions on durable log, %d jobs pending\n"
    (List.length done_before) pending;
  while process_one () do
    ()
  done;

  (* Accounting: every job id 1..njobs completed at least once; ids taken
     right at the crash may appear twice (at-least-once), never more. *)
  let counts = Hashtbl.create 256 in
  List.iter
    (fun id ->
      Hashtbl.replace counts id
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts id)))
    (completions.Dq.Queue_intf.to_list ());
  let missing = ref 0 and duplicated = ref 0 in
  for id = 1 to njobs do
    match Hashtbl.find_opt counts id with
    | None -> incr missing
    | Some 1 -> ()
    | Some _ -> incr duplicated
  done;
  Printf.printf "final: %d missing, %d re-executed (at-least-once)\n" !missing
    !duplicated;
  if !missing > 0 then failwith "a job was lost — durability violated";
  print_endline "OK: no job lost across the power failure."
