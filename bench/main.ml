(* Benchmark harness: regenerates every figure and table of the paper's
   evaluation (Section 10) plus the ablations called out in DESIGN.md.

   Sections (run all by default, or pass ids as arguments):
     fig2-w1 .. fig2-w5   the five workload panels of Figure 2
                          (throughput + ratio vs DurableMSQ)
     census               persist-instruction census tables (TAB-FENCES,
                          TAB-POSTFLUSH): fences/flushes/movnti/post-flush
                          accesses per operation
     micro                bechamel single-thread per-operation latency
     recovery             recovery-time scaling after a crash
     ablation-noinval     Figure-2 W1 rerun on a platform whose flushes do
                          not invalidate cache lines (Section 6's
                          prediction for future hardware)

     shard-scaling        broker throughput vs shard count (Producers
                          workload through Broker.Service, modeled time;
                          writes BENCH_shard.json)
     set-ops              durable keyed-store throughput (both map
                          variants, Zipf keys, load + mixed phases per
                          domain count; writes BENCH_set.json, gated
                          against bench/set_baseline.json)
     durability-lag       acks level x group-commit watermark sweep in
                          the dimm profile: throughput + p99 op→durable
                          lag of the buffered tier vs the strict queue
                          (writes BENCH_durability.json, gated against
                          bench/durability_baseline.json)
     recovery-time        crash→healthy recovery time vs heap size x
                          checkpoint cadence: flat with incremental
                          checkpointing, linear without (writes
                          BENCH_recovery.json, gated against
                          bench/recovery_baseline.json)

   Environment knobs: DQ_OPS (per-thread operations, default 6000),
   DQ_THREADS (comma list; default sweeps 1,2,4,8,16 capped at the core
   count), DQ_REPS (repetitions per point, default 3), DQ_SHARDS (comma
   list for shard-scaling, default 1,2,4,8), DQ_SHARD_THREADS (producer
   streams for shard-scaling, default 4 — modeled time does not
   oversubscribe the host), DQ_BATCH (batch size, default 8; batch 1 is
   always measured alongside). *)

let ops_per_thread =
  match Sys.getenv_opt "DQ_OPS" with Some s -> int_of_string s | None -> 6_000

let threads_list =
  match Sys.getenv_opt "DQ_THREADS" with
  | Some s -> List.map int_of_string (String.split_on_char ',' s)
  | None ->
      (* Busy-wait latency simulation is only meaningful without
         oversubscription: sweep up to the host's core count. *)
      let cores = Domain.recommended_domain_count () in
      List.filter (fun t -> t <= cores) [ 1; 2; 4; 8; 16 ]

let reps =
  match Sys.getenv_opt "DQ_REPS" with Some s -> int_of_string s | None -> 3

let fig2_queues = List.map (fun e -> e.Dq.Registry.name) Dq.Registry.figure2

(* RedoOpt is evaluated only on the first two workloads, as in the paper. *)
let queues_for workload =
  match workload with
  | Harness.Workload.Random_5050 | Harness.Workload.Pairs -> fig2_queues
  | _ -> List.filter (fun n -> n <> "RedoOptQ") fig2_queues

let collect_workload ?(latency = Nvm.Latency.default) workload =
  let queues = queues_for workload in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun threads ->
      List.iter
        (fun qname ->
          let entry = Dq.Registry.find qname in
          let cfg =
            {
              Harness.Runner.default_config with
              threads;
              ops_per_thread;
              latency;
            }
          in
          let r = Harness.Runner.run_median ~reps entry workload cfg in
          Hashtbl.replace tbl (threads, qname) r)
        queues)
    threads_list;
  (queues, fun ~threads ~queue -> Hashtbl.find_opt tbl (threads, queue))

let figure2_workload ?latency workload =
  let queues, get = collect_workload ?latency workload in
  Harness.Report.print_throughput ~workload ~threads_list ~queues ~get

(* Machine-readable export: one CSV per Figure-2 workload plus the census,
   under results/. *)
let export () =
  (try Unix.mkdir "results" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.iter
    (fun workload ->
      let queues, get = collect_workload workload in
      let path = Printf.sprintf "results/fig2-%s.csv" (Harness.Workload.id workload) in
      let oc = open_out path in
      output_string oc "workload,queue,threads,model_mops,wall_mops,fences,postflush\n";
      List.iter
        (fun threads ->
          List.iter
            (fun queue ->
              match get ~threads ~queue with
              | Some r ->
                  Printf.fprintf oc "%s,%s,%d,%.4f,%.4f,%d,%d\n"
                    (Harness.Workload.id workload)
                    queue threads r.Harness.Runner.model_mops
                    r.Harness.Runner.mops
                    r.Harness.Runner.counters.Nvm.Stats.fences
                    (Nvm.Stats.post_flush_accesses r.Harness.Runner.counters)
              | None -> ())
            queues)
        threads_list;
      close_out oc;
      Printf.printf "wrote %s\n%!" path)
    Harness.Workload.all;
  let oc = open_out "results/census.csv" in
  Harness.Report.census_csv oc
    (List.map
       (fun e -> Harness.Runner.run_census e ~ops:2_000)
       Dq.Registry.durable);
  close_out oc;
  Printf.printf "wrote results/census.csv\n%!"

let census () =
  let rows =
    List.map
      (fun e -> Harness.Runner.run_census e ~ops:2_000)
      Dq.Registry.durable
  in
  Harness.Report.print_census rows

(* Recovery scaling is measured over the paper's queues plus ONLL; the
   ablation variants are excluded (the no-predcut variants are
   deliberately quadratic in queue size, which is their ablation's point,
   not a recovery property). *)
let recovery_queues =
  List.filter (fun e -> e.Dq.Registry.durable) Dq.Registry.figure2
  @ [ Dq.Registry.find "ONLL-Q"; Dq.Registry.find "DurableMSQ+results" ]

let recovery () =
  Printf.printf "\n== recovery time after a crash (ms) ==\n";
  Printf.printf "%8s" "size";
  List.iter
    (fun e -> Printf.printf "%14s" e.Dq.Registry.name)
    recovery_queues;
  print_newline ();
  List.iter
    (fun size ->
      Printf.printf "%8d" size;
      List.iter
        (fun entry ->
          Nvm.Tid.reset ();
          Nvm.Tid.set 0;
          let heap =
            Nvm.Heap.create ~mode:Nvm.Heap.Checked ~latency:Nvm.Latency.off ()
          in
          let q = entry.Dq.Registry.make heap in
          for i = 1 to size do
            q.Dq.Queue_intf.enqueue i
          done;
          Nvm.Crash.crash ~policy:Nvm.Crash.Only_persisted heap;
          Nvm.Tid.reset ();
          Nvm.Tid.set 0;
          let t0 = Unix.gettimeofday () in
          q.Dq.Queue_intf.recover ();
          let t1 = Unix.gettimeofday () in
          assert (List.length (q.Dq.Queue_intf.to_list ()) = size);
          Printf.printf "%14.2f" ((t1 -. t0) *. 1e3))
        recovery_queues;
      print_newline ())
    [ 1_000; 10_000; 50_000 ]

(* Bechamel microbenchmark: single-thread enqueue+dequeue pair latency per
   queue, under the simulated NVRAM latencies. *)
let micro () =
  let open Bechamel in
  let open Toolkit in
  Nvm.Tid.reset ();
  Nvm.Tid.set 0;
  let tests =
    List.map
      (fun entry ->
        let heap =
          Nvm.Heap.create ~mode:Nvm.Heap.Fast ~latency:Nvm.Latency.default ()
        in
        let q = entry.Dq.Registry.make heap in
        for i = 1 to 64 do
          q.Dq.Queue_intf.enqueue i
        done;
        Test.make ~name:entry.Dq.Registry.name
          (Staged.stage (fun () ->
               q.Dq.Queue_intf.enqueue 1;
               ignore (q.Dq.Queue_intf.dequeue ()))))
      Dq.Registry.all
  in
  let test = Test.make_grouped ~name:"pair" ~fmt:"%s %s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw_results = Benchmark.all cfg instances test in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  Printf.printf "\n== bechamel: single-thread enq+deq pair latency ==\n%!";
  Hashtbl.iter
    (fun _measure tbl ->
      let rows = ref [] in
      Hashtbl.iter
        (fun name ols ->
          let est =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> e
            | Some [] | None -> nan
          in
          rows := (name, est) :: !rows)
        tbl;
      List.iter
        (fun (name, est) -> Printf.printf "%36s  %10.0f ns/pair\n" name est)
        (List.sort (fun (_, a) (_, b) -> compare a b) !rows))
    results

(* Minimal parser for our own one-object-per-line BENCH_*.json row
   format, used by the regression gates. *)
let field_str line name =
  let pat = Printf.sprintf "\"%s\": \"" name in
  match Str.search_forward (Str.regexp_string pat) line 0 with
  | exception Not_found -> None
  | i ->
      let start = i + String.length pat in
      let stop = String.index_from line start '"' in
      Some (String.sub line start (stop - start))

let field_num line name =
  let pat = Printf.sprintf "\"%s\": " name in
  match Str.search_forward (Str.regexp_string pat) line 0 with
  | exception Not_found -> None
  | i ->
      let start = i + String.length pat in
      let stop = ref start in
      let len = String.length line in
      while
        !stop < len
        && (match line.[!stop] with '0' .. '9' | '.' | '-' -> true | _ -> false)
      do
        incr stop
      done;
      Some (float_of_string (String.sub line start (!stop - start)))

(* Broker shard-count sweep: Producers through Broker.Service at a fixed
   stream count, unbatched and batched, under both enqueue front-ends
   (per-op and flat-combining), under two latency profiles:

   - "cpu" ({!Nvm.Latency.model_only}): persist costs accrue only in
     modeled time, so the wall series measures pure code-path and
     coordination cost.  On a host with fewer cores than worker domains
     this series cannot scale with shards — there is no parallelism to
     harvest — which is exactly why it makes a good regression gate for
     the front-ends' CPU cost.
   - "dimm" ({!Nvm.Latency.dimm_wall}): only the fence *drain* costs,
     and it elapses as wall-clock sleep through each heap's FIFO device
     queue.  The drain is the DIMM's work, not the core's, so drains on
     different shards overlap even on one core while drains on the same
     shard serialize: the wall series is device-bound and scales with
     the shard count — the scaling the sharding design exists to buy,
     expressed in wall-clock time on any host.

   Batching amortizes fences to one per batch per shard, and the
   combining front-end does the same amortization under contention by
   electing one combiner to persist a whole announced batch behind one
   pipelined fence (the split drain keeps the device busy while the
   combiner collects the next batch).  Results land in BENCH_shard.json
   and, when a committed baseline (bench/shard_baseline.json, or
   DQ_SHARD_BASELINE) is present, gate: the run fails if any (profile,
   frontend, batch, shards) point's wall throughput drops below
   DQ_SHARD_GATE_FRAC (default 0.7) of its baseline.  Knobs: DQ_SHARDS
   (comma list), DQ_SHARD_THREADS, DQ_BATCH, DQ_OPS, DQ_DIMM_OPS,
   DQ_WARMUP, DQ_REPS, DQ_SHARD_SMOKE=1 (CI preset: fewer ops,
   repetitions and shard counts), DQ_SHARD_GATE=0 (disable the gate). *)
let shard_scaling () =
  let smoke = Sys.getenv_opt "DQ_SHARD_SMOKE" <> None in
  let shard_counts =
    match Sys.getenv_opt "DQ_SHARDS" with
    | Some s -> List.map int_of_string (String.split_on_char ',' s)
    | None -> if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ]
  in
  (* As many producer streams as the largest shard count: a stream is
     pinned to one shard, so with fewer streams than shards the extra
     shards idle and the top of the scaling series measures a tie
     instead of the added device bandwidth. *)
  let threads =
    match Sys.getenv_opt "DQ_SHARD_THREADS" with
    | Some s -> int_of_string s
    | None -> List.fold_left max 1 shard_counts
  in
  let batch =
    match Sys.getenv_opt "DQ_BATCH" with Some s -> int_of_string s | None -> 8
  in
  (* Wall-clock throughput is a measured series here, so the window must
     be long enough to ride out scheduler and co-tenant noise: unless
     DQ_OPS pins it, use a larger per-thread count than the modeled-only
     sections need. *)
  let ops_per_thread =
    match Sys.getenv_opt "DQ_OPS" with
    | Some s -> int_of_string s
    | None -> if smoke then 4_000 else max 30_000 ops_per_thread
  in
  let warmup =
    match Sys.getenv_opt "DQ_WARMUP" with
    | Some s -> int_of_string s
    | None -> max 200 (ops_per_thread / 10)
  in
  (* More repetitions than the modeled sections: the wall series keeps
     only each point's fastest rotation, and the more rotations, the
     closer that best sample gets to the host's uncontended speed. *)
  let reps =
    match Sys.getenv_opt "DQ_REPS" with
    | Some s -> int_of_string s
    | None -> if smoke then 3 else 8
  in
  (* Device-bound runs sleep out drains of hundreds of microseconds per
     fence, so they need far fewer operations for a stable series. *)
  let dimm_ops =
    match Sys.getenv_opt "DQ_DIMM_OPS" with
    | Some s -> int_of_string s
    | None -> if smoke then 300 else 1_500
  in
  let cfg =
    { Harness.Sharded.default_config with threads; ops_per_thread; warmup }
  in
  let profiles =
    [
      ("cpu", Nvm.Latency.model_only, ops_per_thread, warmup);
      ("dimm", Nvm.Latency.dimm_wall, dimm_ops, max 50 (dimm_ops / 10));
    ]
  in
  let frontend (r : Harness.Sharded.result) =
    if r.Harness.Sharded.combining then "combining" else "per-op"
  in
  Printf.printf
    "\n\
     == broker shard scaling: %s, Producers, %d streams, %d warmup ops ==\n"
    cfg.Harness.Sharded.algorithm threads warmup;
  Printf.printf "%8s %10s %8s %8s %14s %14s %9s %9s %12s %14s %10s %10s %10s\n"
    "profile" "frontend" "shards" "batch" "model Mops/s" "wall Mops/s"
    "wall sd" "wall x" "fences/op" "postflush/op" "max f/op" "max f/bat"
    "max pf/op";
  let rows =
    List.concat_map
      (fun (pname, latency, ops_per_thread, warmup) ->
        List.concat_map
          (fun combining ->
            List.concat_map
              (fun b ->
                List.map
                  (fun r -> (pname, r))
                  (Harness.Sharded.sweep ~reps ~shard_counts
                     {
                       cfg with
                       Harness.Sharded.batch = b;
                       combining;
                       latency;
                       ops_per_thread;
                       warmup;
                     }))
              [ 1; batch ])
          [ false; true ])
      profiles
  in
  List.iter
    (fun (pname, (r : Harness.Sharded.result)) ->
      Printf.printf
        "%8s %10s %8d %8d %14.3f %14.3f %9.3f %9.2f %12.4f %14.4f %10d %10d \
         %10d\n"
        pname (frontend r) r.Harness.Sharded.shards r.Harness.Sharded.batch
        r.Harness.Sharded.model_mops r.Harness.Sharded.mops
        r.Harness.Sharded.wall_stddev_mops r.Harness.Sharded.wall_speedup
        r.Harness.Sharded.fences_per_op r.Harness.Sharded.post_flush_per_op
        r.Harness.Sharded.max_op_fences r.Harness.Sharded.max_batch_fences
        r.Harness.Sharded.max_post_flush)
    rows;
  let oc = open_out "BENCH_shard.json" in
  output_string oc "[\n";
  List.iteri
    (fun i (pname, (r : Harness.Sharded.result)) ->
      Printf.fprintf oc
        "  {\"algorithm\": %S, \"workload\": \"w3-producers\", \"profile\": \
         %S, \"frontend\": %S, \"threads\": %d, \"shards\": %d, \"batch\": \
         %d, \"ops\": %d, \"trials\": %d, \"model_mops\": %.4f, \
         \"wall_mops\": %.4f, \"wall_min_mops\": %.4f, \"wall_max_mops\": \
         %.4f, \"wall_stddev_mops\": %.4f, \"wall_speedup\": %.4f, \
         \"fences_per_op\": %.4f, \"post_flush_per_op\": %.4f, \
         \"max_fences_per_op\": %d, \"max_batch_fences\": %d, \
         \"max_post_flush_per_op\": %d}%s\n"
        r.Harness.Sharded.algorithm pname (frontend r)
        r.Harness.Sharded.threads r.Harness.Sharded.shards
        r.Harness.Sharded.batch r.Harness.Sharded.total_ops
        r.Harness.Sharded.trials r.Harness.Sharded.model_mops
        r.Harness.Sharded.mops r.Harness.Sharded.wall_min_mops
        r.Harness.Sharded.wall_max_mops r.Harness.Sharded.wall_stddev_mops
        r.Harness.Sharded.wall_speedup r.Harness.Sharded.fences_per_op
        r.Harness.Sharded.post_flush_per_op r.Harness.Sharded.max_op_fences
        r.Harness.Sharded.max_batch_fences r.Harness.Sharded.max_post_flush
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote BENCH_shard.json\n%!";
  (* -- Regression gate ---------------------------------------------------- *)
  let baseline_path =
    match Sys.getenv_opt "DQ_SHARD_BASELINE" with
    | Some p -> p
    | None -> "bench/shard_baseline.json"
  in
  let gate_enabled = Sys.getenv_opt "DQ_SHARD_GATE" <> Some "0" in
  if gate_enabled && Sys.file_exists baseline_path then begin
    let frac =
      match Sys.getenv_opt "DQ_SHARD_GATE_FRAC" with
      | Some s -> float_of_string s
      | None -> 0.7
    in
    let key p fe b s = Printf.sprintf "%s %s b%d s%d" p fe b s in
    let ic = open_in baseline_path in
    let baseline = Hashtbl.create 16 in
    (try
       while true do
         let line = input_line ic in
         match
           ( field_str line "profile",
             field_str line "frontend",
             field_num line "batch",
             field_num line "shards",
             field_num line "wall_mops" )
         with
         | Some p, Some fe, Some b, Some s, Some mops ->
             Hashtbl.replace baseline
               (key p fe (int_of_float b) (int_of_float s))
               mops
         | _ -> ()
       done
     with End_of_file -> ());
    close_in ic;
    let failures = ref [] in
    List.iter
      (fun (pname, (r : Harness.Sharded.result)) ->
        let k =
          key pname (frontend r) r.Harness.Sharded.batch
            r.Harness.Sharded.shards
        in
        match Hashtbl.find_opt baseline k with
        | Some base when r.Harness.Sharded.mops < frac *. base ->
            failures :=
              Printf.sprintf "%s: %.3f wall Mops/s < %.0f%% of baseline %.3f"
                k r.Harness.Sharded.mops (frac *. 100.) base
              :: !failures
        | _ -> ())
      rows;
    if !failures <> [] then begin
      Printf.eprintf
        "SHARD-SCALING REGRESSION GATE FAILED (baseline %s):\n%s\n%!"
        baseline_path
        (String.concat "\n" (List.rev !failures));
      exit 1
    end
    else
      Printf.printf "shard-scaling gate passed (>= %.0f%% of %s)\n%!"
        (frac *. 100.) baseline_path
  end

(* Primitive-level heap benchmark: raw throughput of the simulated-NVRAM
   hot paths (read / write / cas / write+flush+fence / movnti+fence) per
   mode and domain count, on private per-domain lines — this measures
   the simulator's own overhead, not algorithmic contention.  Write and
   cas loops persist every 64th operation so checked-mode store logs
   compact instead of growing without bound (as they would in any real
   usage, where fences are never further apart than a batch).

   Writes BENCH_heap.json and, when a committed baseline
   (bench/heap_baseline.json, or DQ_HEAP_BASELINE) is present, gates:
   the run fails if Fast single-domain throughput of any op drops below
   DQ_HEAP_GATE_FRAC (default 0.7) of its baseline.  Knobs:
   DQ_HEAPOPS_ITERS, DQ_HEAPOPS_TRIALS, DQ_HEAPOPS_DOMAINS (comma
   list), DQ_HEAPOPS_SMOKE=1 (CI preset: fewer iterations and domain
   counts), DQ_HEAP_GATE=0 (disable the gate). *)

let heap_ops () =
  let env_int name d =
    match Sys.getenv_opt name with Some s -> int_of_string s | None -> d
  in
  let smoke = Sys.getenv_opt "DQ_HEAPOPS_SMOKE" <> None in
  let iters = env_int "DQ_HEAPOPS_ITERS" (if smoke then 30_000 else 200_000) in
  let trials = env_int "DQ_HEAPOPS_TRIALS" (if smoke then 2 else 3) in
  let domain_counts =
    match Sys.getenv_opt "DQ_HEAPOPS_DOMAINS" with
    | Some s -> List.map int_of_string (String.split_on_char ',' s)
    | None -> if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ]
  in
  let modes = [ (Nvm.Heap.Fast, "fast"); (Nvm.Heap.Checked, "checked") ] in
  let spin_barrier n =
    let remaining = Atomic.make n in
    fun () ->
      Atomic.decr remaining;
      while Atomic.get remaining > 0 do
        Domain.cpu_relax ()
      done
  in
  (* One trial: [d] domains, each hammering its own line of its own
     region; returns wall Mops aggregated over the domains. *)
  let trial ~mode ~d op_body =
    Nvm.Tid.reset ();
    Nvm.Tid.set d;
    let heap = Nvm.Heap.create ~mode ~latency:Nvm.Latency.model_only () in
    let regions =
      Array.init d (fun _ ->
          Nvm.Heap.alloc_region heap ~tag:Nvm.Region.Meta
            ~words:Nvm.Line.words_per_line)
    in
    Nvm.Heap.reset_fence_contention heap;
    let barrier = spin_barrier d in
    let t_start = Array.make d 0. and t_end = Array.make d 0. in
    let workers =
      List.init d (fun w ->
          Domain.spawn (fun () ->
              Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 20 };
              Nvm.Tid.set w;
              let addr = Nvm.Region.base_addr regions.(w) in
              (* Warm the code paths and the line state. *)
              for i = 1 to max 1 (iters / 10) do
                op_body heap addr i
              done;
              barrier ();
              t_start.(w) <- Unix.gettimeofday ();
              for i = 1 to iters do
                op_body heap addr i
              done;
              t_end.(w) <- Unix.gettimeofday ()))
    in
    List.iter Domain.join workers;
    let elapsed =
      Array.fold_left max neg_infinity t_end
      -. Array.fold_left min infinity t_start
    in
    float_of_int (d * iters) /. elapsed /. 1e6
  in
  let median l =
    let s = List.sort compare l in
    List.nth s (List.length s / 2)
  in
  let ops =
    [
      ("read", fun h a _ -> ignore (Nvm.Heap.read h a));
      ( "write",
        fun h a i ->
          Nvm.Heap.write h a i;
          if i land 63 = 0 then begin
            Nvm.Heap.flush h a;
            Nvm.Heap.sfence h
          end );
      ( "cas",
        fun h a i ->
          ignore (Nvm.Heap.cas h a ~expected:(i land 1) ~desired:(1 - (i land 1)));
          if i land 63 = 0 then begin
            Nvm.Heap.flush h a;
            Nvm.Heap.sfence h
          end );
      ( "persist",
        fun h a i ->
          Nvm.Heap.write h a i;
          Nvm.Heap.flush h a;
          Nvm.Heap.sfence h );
      ( "movnti",
        fun h a i ->
          Nvm.Heap.movnti h a i;
          Nvm.Heap.sfence h );
    ]
  in
  Printf.printf
    "\n\
     == heap primitive throughput (%d iters/domain, median of %d trials) ==\n"
    iters trials;
  Printf.printf "%10s %10s %10s %14s\n" "op" "mode" "domains" "wall Mops/s";
  let rows = ref [] in
  List.iter
    (fun (mode, mode_name) ->
      List.iter
        (fun d ->
          List.iter
            (fun (op_name, body) ->
              let mops =
                median (List.init trials (fun _ -> trial ~mode ~d body))
              in
              Printf.printf "%10s %10s %10d %14.3f\n%!" op_name mode_name d
                mops;
              rows := (op_name, mode_name, d, mops) :: !rows)
            ops)
        domain_counts)
    modes;
  let rows = List.rev !rows in
  let oc = open_out "BENCH_heap.json" in
  output_string oc "[\n";
  List.iteri
    (fun i (op, mode, d, mops) ->
      Printf.fprintf oc
        "  {\"op\": %S, \"mode\": %S, \"domains\": %d, \"iters\": %d, \
         \"trials\": %d, \"mops\": %.3f}%s\n"
        op mode d iters trials mops
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote BENCH_heap.json\n%!";
  (* -- Regression gate ---------------------------------------------------- *)
  let baseline_path =
    match Sys.getenv_opt "DQ_HEAP_BASELINE" with
    | Some p -> p
    | None -> "bench/heap_baseline.json"
  in
  let gate_enabled = Sys.getenv_opt "DQ_HEAP_GATE" <> Some "0" in
  if gate_enabled && Sys.file_exists baseline_path then begin
    let frac =
      match Sys.getenv_opt "DQ_HEAP_GATE_FRAC" with
      | Some s -> float_of_string s
      | None -> 0.7
    in
    let ic = open_in baseline_path in
    let baseline = Hashtbl.create 16 in
    (try
       while true do
         let line = input_line ic in
         match (field_str line "op", field_str line "mode", field_num line "domains", field_num line "mops") with
         | Some op, Some "fast", Some 1., Some mops ->
             Hashtbl.replace baseline op mops
         | _ -> ()
       done
     with End_of_file -> ());
    close_in ic;
    let failures = ref [] in
    List.iter
      (fun (op, mode, d, mops) ->
        if mode = "fast" && d = 1 then
          match Hashtbl.find_opt baseline op with
          | Some base when mops < frac *. base ->
              failures :=
                Printf.sprintf "%s: %.3f Mops/s < %.0f%% of baseline %.3f" op
                  mops (frac *. 100.) base
                :: !failures
          | _ -> ())
      rows;
    if !failures <> [] then begin
      Printf.eprintf
        "HEAP-OPS REGRESSION GATE FAILED (baseline %s):\n%s\n%!" baseline_path
        (String.concat "\n" (List.rev !failures));
      exit 1
    end
    else
      Printf.printf "heap-ops gate passed (>= %.0f%% of %s)\n%!" (frac *. 100.)
        baseline_path
  end

(* Durable keyed-store throughput: both map variants under a Zipf-skewed
   key stream, a pure-insert load phase then a mixed
   put/lookup/remove phase, per domain count.  All domains share one map
   instance, so multi-domain rows measure the real contended paths
   (same-key overwrite CASes, SOFT's pnode install).  Writes
   BENCH_set.json and, when a committed baseline
   (bench/set_baseline.json, or DQ_SET_BASELINE) is present, gates: the
   run fails if any single-domain phase drops below DQ_SET_GATE_FRAC
   (default 0.7) of its baseline.  Knobs: DQ_SETOPS_ITERS,
   DQ_SETOPS_TRIALS, DQ_SETOPS_DOMAINS (comma list), DQ_SETOPS_KEYS,
   DQ_SETOPS_SMOKE=1 (CI preset), DQ_SET_GATE=0 (disable the gate). *)
let set_ops () =
  let env_int name d =
    match Sys.getenv_opt name with Some s -> int_of_string s | None -> d
  in
  let smoke = Sys.getenv_opt "DQ_SETOPS_SMOKE" <> None in
  let iters = env_int "DQ_SETOPS_ITERS" (if smoke then 20_000 else 100_000) in
  let trials = env_int "DQ_SETOPS_TRIALS" (if smoke then 2 else 3) in
  let key_space = env_int "DQ_SETOPS_KEYS" 4_096 in
  let domain_counts =
    match Sys.getenv_opt "DQ_SETOPS_DOMAINS" with
    | Some s -> List.map int_of_string (String.split_on_char ',' s)
    | None -> if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ]
  in
  let spin_barrier n =
    let remaining = Atomic.make n in
    fun () ->
      Atomic.decr remaining;
      while Atomic.get remaining > 0 do
        Domain.cpu_relax ()
      done
  in
  (* One trial: [d] domains over one shared map; returns aggregated wall
     Mops for the load phase and the mixed phase. *)
  let trial (entry : Dq.Registry.map_entry) ~d =
    Nvm.Tid.reset ();
    Nvm.Tid.set d;
    let heap =
      Nvm.Heap.create ~mode:Nvm.Heap.Fast ~latency:Nvm.Latency.model_only ()
    in
    let m = entry.Dq.Registry.make_map heap in
    let load_barrier = spin_barrier d and mixed_barrier = spin_barrier d in
    let ls = Array.make d 0. and le = Array.make d 0. in
    let ms = Array.make d 0. and me = Array.make d 0. in
    let workers =
      List.init d (fun w ->
          Domain.spawn (fun () ->
              Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 20 };
              Nvm.Tid.set w;
              let z =
                Harness.Zipf.create_worker ~n:key_space ~seed:0x5E70 ~worker:w
                  ()
              in
              let rng = Random.State.make [| 0x5E7B; w |] in
              (* Warm the allocator areas and code paths. *)
              for i = 1 to max 1 (iters / 10) do
                m.Dset.Map_intf.put ~key:(Harness.Zipf.draw z) ~value:i
              done;
              load_barrier ();
              ls.(w) <- Unix.gettimeofday ();
              for i = 1 to iters do
                m.Dset.Map_intf.put ~key:(Harness.Zipf.draw z) ~value:i
              done;
              le.(w) <- Unix.gettimeofday ();
              mixed_barrier ();
              ms.(w) <- Unix.gettimeofday ();
              for i = 1 to iters do
                let key = Harness.Zipf.draw z in
                match Random.State.int rng 10 with
                | 0 | 1 -> ignore (m.Dset.Map_intf.remove ~key)
                | 2 | 3 | 4 | 5 -> ignore (m.Dset.Map_intf.get ~key)
                | _ -> m.Dset.Map_intf.put ~key ~value:i
              done;
              me.(w) <- Unix.gettimeofday ()))
    in
    List.iter Domain.join workers;
    let mops s e =
      let elapsed =
        Array.fold_left max neg_infinity e -. Array.fold_left min infinity s
      in
      float_of_int (d * iters) /. elapsed /. 1e6
    in
    (mops ls le, mops ms me)
  in
  let median l =
    let s = List.sort compare l in
    List.nth s (List.length s / 2)
  in
  Printf.printf
    "\n\
     == keyed-store throughput (%d iters/domain, zipf over %d keys, median \
     of %d trials) ==\n"
    iters key_space trials;
  Printf.printf "%14s %8s %10s %14s\n" "map" "phase" "domains" "wall Mops/s";
  let rows = ref [] in
  List.iter
    (fun (entry : Dq.Registry.map_entry) ->
      List.iter
        (fun d ->
          let results = List.init trials (fun _ -> trial entry ~d) in
          let load = median (List.map fst results) in
          let mixed = median (List.map snd results) in
          List.iter
            (fun (phase, mops) ->
              Printf.printf "%14s %8s %10d %14.3f\n%!" entry.Dq.Registry.m_name
                phase d mops;
              rows := (entry.Dq.Registry.m_name, phase, d, mops) :: !rows)
            [ ("load", load); ("mixed", mixed) ])
        domain_counts)
    Dq.Registry.maps;
  let rows = List.rev !rows in
  let oc = open_out "BENCH_set.json" in
  output_string oc "[\n";
  List.iteri
    (fun i (map, phase, d, mops) ->
      Printf.fprintf oc
        "  {\"map\": %S, \"phase\": %S, \"domains\": %d, \"iters\": %d, \
         \"trials\": %d, \"keys\": %d, \"mops\": %.3f}%s\n"
        map phase d iters trials key_space mops
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote BENCH_set.json\n%!";
  (* -- Regression gate ---------------------------------------------------- *)
  let baseline_path =
    match Sys.getenv_opt "DQ_SET_BASELINE" with
    | Some p -> p
    | None -> "bench/set_baseline.json"
  in
  let gate_enabled = Sys.getenv_opt "DQ_SET_GATE" <> Some "0" in
  if gate_enabled && Sys.file_exists baseline_path then begin
    let frac =
      match Sys.getenv_opt "DQ_SET_GATE_FRAC" with
      | Some s -> float_of_string s
      | None -> 0.7
    in
    let ic = open_in baseline_path in
    let baseline = Hashtbl.create 16 in
    (try
       while true do
         let line = input_line ic in
         match
           ( field_str line "map",
             field_str line "phase",
             field_num line "domains",
             field_num line "mops" )
         with
         | Some map, Some phase, Some 1., Some mops ->
             Hashtbl.replace baseline (map, phase) mops
         | _ -> ()
       done
     with End_of_file -> ());
    close_in ic;
    let failures = ref [] in
    List.iter
      (fun (map, phase, d, mops) ->
        if d = 1 then
          match Hashtbl.find_opt baseline (map, phase) with
          | Some base when mops < frac *. base ->
              failures :=
                Printf.sprintf "%s/%s: %.3f Mops/s < %.0f%% of baseline %.3f"
                  map phase mops (frac *. 100.) base
                :: !failures
          | _ -> ())
      rows;
    if !failures <> [] then begin
      Printf.eprintf "SET-OPS REGRESSION GATE FAILED (baseline %s):\n%s\n%!"
        baseline_path
        (String.concat "\n" (List.rev !failures));
      exit 1
    end
    else
      Printf.printf "set-ops gate passed (>= %.0f%% of %s)\n%!" (frac *. 100.)
        baseline_path
  end

(* Durability-lag sweep: the buffered-durability bargain in wall-clock
   numbers.  One producer, one queue instance on a [dimm] heap
   ({!Nvm.Latency.dimm_wall}: fence drains elapse as wall-clock device
   time), enqueue-only, sweeping acks level x group-commit watermark:

   - all-synced: the strict queue — one full device drain per operation,
     the price of strict durable linearizability;
   - leader: the buffered tier with commit drains joined — the producer
     is paced to the device once per watermark instead of once per op;
   - none: fire-and-forget — commits issue asynchronously and the
     closing [sync] joins whatever is left.

   Throughput includes the closing [sync], so durability is complete at
   the end of every row's timed window.  The op→durable lag of a
   buffered enqueue is the wall time from its return to the deadline of
   the commit drain covering it ({!Dq.Buffered_q.set_on_commit} +
   {!Nvm.Heap.drain_deadline}); strict operations are durable at return
   (lag 0 by contract, so the strict row reports none).

   Writes BENCH_durability.json and, when a committed baseline
   (bench/durability_baseline.json, or DQ_DUR_BASELINE) is present,
   gates: the run fails if any (level, batch) row's throughput drops
   below DQ_DUR_GATE_FRAC (default 0.7) of its baseline.  Knobs:
   DQ_DUR_OPS, DQ_DUR_TRIALS, DQ_DUR_BATCHES (comma list),
   DQ_DUR_SMOKE=1 (CI preset), DQ_DUR_GATE=0 (disable the gate). *)
let durability_lag () =
  let env_int name d =
    match Sys.getenv_opt name with Some s -> int_of_string s | None -> d
  in
  let smoke = Sys.getenv_opt "DQ_DUR_SMOKE" <> None in
  (* Enqueue-only (the journal is never consumed), so ops is bounded by
     the journal capacity. *)
  let ops = min 60_000 (env_int "DQ_DUR_OPS" (if smoke then 400 else 2_000)) in
  let trials = env_int "DQ_DUR_TRIALS" (if smoke then 2 else 3) in
  let batches =
    match Sys.getenv_opt "DQ_DUR_BATCHES" with
    | Some s -> List.map int_of_string (String.split_on_char ',' s)
    | None -> [ 8; 64 ]
  in
  let entry = Dq.Registry.find "OptUnlinkedQ" in
  (* One trial: returns (wall seconds, op→durable lags in seconds,
     commits issued). *)
  let trial ~level ~batch =
    Nvm.Tid.reset ();
    Nvm.Tid.set 0;
    let heap =
      Nvm.Heap.create ~mode:Nvm.Heap.Fast ~latency:Nvm.Latency.dimm_wall ()
    in
    match level with
    | "all-synced" ->
        let q = entry.Dq.Registry.make heap in
        let t0 = Unix.gettimeofday () in
        for i = 1 to ops do
          q.Dq.Queue_intf.enqueue i
        done;
        let t1 = Unix.gettimeofday () in
        (t1 -. t0, [], 0)
    | level ->
        let b =
          Dq.Buffered_q.create ~watermark:batch heap entry.Dq.Registry.make
        in
        let t_enq = Array.make ops 0. in
        let t_durable = Array.make ops 0. in
        let covered = ref 0 in
        Dq.Buffered_q.set_on_commit b
          (Some
             (fun ~floor ~consumed:_ ~drain ->
               (* Everything the commit newly covers becomes durable at
                  its meta-fence drain deadline. *)
               let dl = Nvm.Heap.drain_deadline drain in
               let dl = if dl > 0. then dl else Unix.gettimeofday () in
               let upto = min floor ops in
               for i = !covered to upto - 1 do
                 t_durable.(i) <- dl
               done;
               if upto > !covered then covered := upto));
        let join = level = "leader" in
        let t0 = Unix.gettimeofday () in
        for i = 1 to ops do
          Dq.Buffered_q.enqueue ~join b i;
          t_enq.(i - 1) <- Unix.gettimeofday ()
        done;
        Dq.Buffered_q.sync b;
        let t1 = Unix.gettimeofday () in
        let lags =
          List.init ops (fun i -> max 0. (t_durable.(i) -. t_enq.(i)))
        in
        (t1 -. t0, lags, (Dq.Buffered_q.stats b).Dq.Buffered_q.s_commits)
  in
  let percentile lags p =
    match lags with
    | [] -> 0.
    | lags ->
        let a = Array.of_list lags in
        Array.sort compare a;
        a.(min (Array.length a - 1) (Array.length a * p / 100))
  in
  let mean = function
    | [] -> 0.
    | lags ->
        List.fold_left ( +. ) 0. lags /. float_of_int (List.length lags)
  in
  (* The trial with median wall time represents its row (lags and all —
     a lag distribution from a different trial than the throughput would
     be incoherent). *)
  let run_row ~level ~batch =
    let results = List.init trials (fun _ -> trial ~level ~batch) in
    let sorted =
      List.sort (fun (a, _, _) (b, _, _) -> compare a b) results
    in
    List.nth sorted (List.length sorted / 2)
  in
  Printf.printf
    "\n\
     == durability lag: level x group-commit watermark (%s, dimm profile, \
     %d enqueues, median of %d trials) ==\n"
    entry.Dq.Registry.name ops trials;
  Printf.printf "%12s %8s %12s %10s %14s %14s %9s\n" "level" "batch"
    "wall kops/s" "vs strict" "p99 lag us" "mean lag us" "commits";
  let rows = ref [] in
  let emit ~level ~batch =
    let wall, lags, commits = run_row ~level ~batch in
    let kops = float_of_int ops /. wall /. 1e3 in
    rows := (level, batch, kops, lags, commits) :: !rows;
    kops
  in
  let strict_kops = emit ~level:"all-synced" ~batch:1 in
  List.iter
    (fun level -> List.iter (fun b -> ignore (emit ~level ~batch:b)) batches)
    [ "leader"; "none" ];
  let rows = List.rev !rows in
  List.iter
    (fun (level, batch, kops, lags, commits) ->
      Printf.printf "%12s %8d %12.2f %10.2f %14.1f %14.1f %9d\n%!" level batch
        kops (kops /. strict_kops)
        (percentile lags 99 *. 1e6)
        (mean lags *. 1e6)
        commits)
    rows;
  let best_speedup =
    List.fold_left
      (fun acc (_, _, kops, _, _) -> max acc (kops /. strict_kops))
      0. rows
  in
  Printf.printf "best buffered speedup vs strict: %.2fx\n%!" best_speedup;
  if (not smoke) && best_speedup < 2. then
    Printf.eprintf
      "WARNING: buffered tier under 2x strict throughput (%.2fx) — the \
       group commit is not amortizing the device drain\n%!"
      best_speedup;
  let oc = open_out "BENCH_durability.json" in
  output_string oc "[\n";
  List.iteri
    (fun i (level, batch, kops, lags, commits) ->
      Printf.fprintf oc
        "  {\"algorithm\": %S, \"profile\": \"dimm\", \"level\": %S, \
         \"batch\": %d, \"ops\": %d, \"trials\": %d, \"wall_kops\": %.3f, \
         \"speedup_vs_strict\": %.3f, \"p99_lag_us\": %.1f, \
         \"mean_lag_us\": %.1f, \"commits\": %d}%s\n"
        entry.Dq.Registry.name level batch ops trials kops
        (kops /. strict_kops)
        (percentile lags 99 *. 1e6)
        (mean lags *. 1e6)
        commits
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote BENCH_durability.json\n%!";
  (* -- Regression gate ---------------------------------------------------- *)
  let baseline_path =
    match Sys.getenv_opt "DQ_DUR_BASELINE" with
    | Some p -> p
    | None -> "bench/durability_baseline.json"
  in
  let gate_enabled = Sys.getenv_opt "DQ_DUR_GATE" <> Some "0" in
  if gate_enabled && Sys.file_exists baseline_path then begin
    let frac =
      match Sys.getenv_opt "DQ_DUR_GATE_FRAC" with
      | Some s -> float_of_string s
      | None -> 0.7
    in
    let key level batch = Printf.sprintf "%s b%d" level batch in
    let ic = open_in baseline_path in
    let baseline = Hashtbl.create 16 in
    (try
       while true do
         let line = input_line ic in
         match
           ( field_str line "level",
             field_num line "batch",
             field_num line "wall_kops" )
         with
         | Some level, Some b, Some kops ->
             Hashtbl.replace baseline (key level (int_of_float b)) kops
         | _ -> ()
       done
     with End_of_file -> ());
    close_in ic;
    let failures = ref [] in
    List.iter
      (fun (level, batch, kops, _, _) ->
        let k = key level batch in
        match Hashtbl.find_opt baseline k with
        | Some base when kops < frac *. base ->
            failures :=
              Printf.sprintf "%s: %.2f kops/s < %.0f%% of baseline %.2f" k
                kops (frac *. 100.) base
              :: !failures
        | _ -> ())
      rows;
    if !failures <> [] then begin
      Printf.eprintf
        "DURABILITY-LAG REGRESSION GATE FAILED (baseline %s):\n%s\n%!"
        baseline_path
        (String.concat "\n" (List.rev !failures));
      exit 1
    end
    else
      Printf.printf "durability-lag gate passed (>= %.0f%% of %s)\n%!"
        (frac *. 100.) baseline_path
  end

(* Recovery time vs heap size x checkpoint cadence — the incremental
   checkpoint's reason to exist.  Each point: enqueue [size] items (the
   designated areas grow to hold them all), drain down to a small live
   window (the drained regions stay allocated: the free lists hold
   them), optionally take one checkpoint (stream the window, flip the
   epoch, retire the drained regions), crash under Only_persisted, and
   time the recovery.  Without the checkpoint, recovery scans every
   allocated region — linear in peak heap size forever after; with it,
   the scan is bounded by the live window plus the post-checkpoint
   residue — flat.  Node areas are shrunk (area_lines 1024) so the
   region count actually tracks [size] — but no smaller: UnlinkedQ's
   double-width-CAS head packs the node pointer into 32 bits, so region
   ids must stay under 256 even at the 100x size.

   Writes BENCH_recovery.json; when a committed baseline
   (bench/recovery_baseline.json, or DQ_RECOVERY_BASELINE) is present,
   gates: a row fails if its recover_ms exceeds baseline /
   DQ_RECOVERY_GATE_FRAC (default 0.7; rows under 0.5 ms of baseline
   are too noisy to gate).  Knobs: DQ_RECOVERY_SIZE (base size),
   DQ_RECOVERY_TRIALS, DQ_RECOVERY_SMOKE=1 (CI preset),
   DQ_RECOVERY_GATE=0 (disable the gate). *)
let recovery_time () =
  let env_int name d =
    match Sys.getenv_opt name with Some s -> int_of_string s | None -> d
  in
  let smoke = Sys.getenv_opt "DQ_RECOVERY_SMOKE" <> None in
  let base = env_int "DQ_RECOVERY_SIZE" (if smoke then 400 else 2_000) in
  let trials = env_int "DQ_RECOVERY_TRIALS" (if smoke then 2 else 3) in
  let window = 64 in
  let sizes = [ base; base * 10; base * 100 ] in
  let queues = [ "UnlinkedQ"; "OptUnlinkedQ" ] in
  let saved_area = !Reclaim.Ssmem.default_area_lines in
  Reclaim.Ssmem.default_area_lines := 1024;
  Fun.protect
    ~finally:(fun () -> Reclaim.Ssmem.default_area_lines := saved_area)
    (fun () ->
      let trial entry ~size ~ckpt =
        Nvm.Tid.reset ();
        Nvm.Tid.set 0;
        let heap =
          Nvm.Heap.create ~mode:Nvm.Heap.Checked ~latency:Nvm.Latency.off ()
        in
        let q = entry.Dq.Registry.make heap in
        for i = 1 to size do
          q.Dq.Queue_intf.enqueue i
        done;
        for _ = 1 to size - window do
          ignore (q.Dq.Queue_intf.dequeue ())
        done;
        if ckpt then
          Option.iter
            (fun ck -> ignore (Dq.Checkpoint.run ck))
            q.Dq.Queue_intf.checkpoint;
        Nvm.Crash.crash ~policy:Nvm.Crash.Only_persisted heap;
        Nvm.Tid.reset ();
        Nvm.Tid.set 0;
        let t0 = Unix.gettimeofday () in
        q.Dq.Queue_intf.recover ();
        let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
        assert (List.length (q.Dq.Queue_intf.to_list ()) = window);
        let stats =
          match q.Dq.Queue_intf.checkpoint with
          | Some ck -> Dq.Checkpoint.last_recovery ck
          | None -> Dq.Checkpoint.no_recovery
        in
        (ms, stats, Nvm.Heap.occupancy heap)
      in
      let run_point entry ~size ~ckpt =
        let results =
          List.init trials (fun _ -> trial entry ~size ~ckpt)
        in
        let sorted =
          List.sort (fun (a, _, _) (b, _, _) -> compare a b) results
        in
        List.nth sorted (List.length sorted / 2)
      in
      Printf.printf
        "\n\
         == recovery time vs heap size x checkpointing (crash -> healthy \
         ms, live window %d, median of %d trials) ==\n"
        window trials;
      Printf.printf "%14s %9s %6s %12s %8s %10s %8s %8s\n" "queue" "size"
        "ckpt" "recover ms" "epoch" "replayed" "scanned" "regions";
      let rows = ref [] in
      List.iter
        (fun name ->
          let entry = Dq.Registry.find name in
          List.iter
            (fun ckpt ->
              List.iter
                (fun size ->
                  let ms, stats, occ = run_point entry ~size ~ckpt in
                  rows := (name, size, ckpt, ms, stats, occ) :: !rows;
                  Printf.printf "%14s %9d %6s %12.2f %8d %10d %8d %8d\n%!"
                    name size
                    (if ckpt then "on" else "off")
                    ms stats.Dq.Checkpoint.ckpt_epoch
                    stats.Dq.Checkpoint.replayed_items
                    stats.Dq.Checkpoint.scanned_regions
                    (Nvm.Stats.live_regions occ))
                sizes)
            [ false; true ])
        queues;
      let rows = List.rev !rows in
      (* Flatness summary: the checkpointed curve must stay flat while
         the unchecked one tracks the heap. *)
      List.iter
        (fun name ->
          let ms_of ckpt size =
            List.find_map
              (fun (n, s, c, ms, _, _) ->
                if n = name && s = size && c = ckpt then Some ms else None)
              rows
            |> Option.get
          in
          let big = List.nth sizes (List.length sizes - 1) in
          let on = ms_of true big /. Float.max 1e-6 (ms_of true base) in
          let off = ms_of false big /. Float.max 1e-6 (ms_of false base) in
          Printf.printf
            "%s: %dx heap growth -> %.2fx recovery with checkpointing, \
             %.2fx without\n%!"
            name (big / base) on off;
          if (not smoke) && on > 2. then
            Printf.eprintf
              "WARNING: %s checkpointed recovery grew %.2fx over a %dx \
               heap (bound 2x) — compaction is not bounding recovery\n%!"
              name on (big / base))
        queues;
      let oc = open_out "BENCH_recovery.json" in
      output_string oc "[\n";
      List.iteri
        (fun i (name, size, ckpt, ms, (stats : Dq.Checkpoint.recovery_stats), occ) ->
          Printf.fprintf oc
            "  {\"algorithm\": %S, \"size\": %d, \"checkpoint\": %S, \
             \"window\": %d, \"trials\": %d, \"recover_ms\": %.3f, \
             \"ckpt_epoch\": %d, \"replayed_items\": %d, \
             \"scanned_regions\": %d, \"live_regions\": %d, \
             \"retired_regions\": %d, \"reclaimed_words\": %d}%s\n"
            name size
            (if ckpt then "on" else "off")
            window trials ms stats.Dq.Checkpoint.ckpt_epoch
            stats.Dq.Checkpoint.replayed_items
            stats.Dq.Checkpoint.scanned_regions
            (Nvm.Stats.live_regions occ)
            occ.Nvm.Stats.regions_retired occ.Nvm.Stats.words_reclaimed
            (if i = List.length rows - 1 then "" else ","))
        rows;
      output_string oc "]\n";
      close_out oc;
      Printf.printf "wrote BENCH_recovery.json\n%!";
      (* -- Regression gate ------------------------------------------------ *)
      let baseline_path =
        match Sys.getenv_opt "DQ_RECOVERY_BASELINE" with
        | Some p -> p
        | None -> "bench/recovery_baseline.json"
      in
      let gate_enabled = Sys.getenv_opt "DQ_RECOVERY_GATE" <> Some "0" in
      if gate_enabled && Sys.file_exists baseline_path then begin
        let frac =
          match Sys.getenv_opt "DQ_RECOVERY_GATE_FRAC" with
          | Some s -> float_of_string s
          | None -> 0.7
        in
        let key name size ckpt =
          Printf.sprintf "%s %d %s" name size (if ckpt then "on" else "off")
        in
        let ic = open_in baseline_path in
        let baseline = Hashtbl.create 16 in
        (try
           while true do
             let line = input_line ic in
             match
               ( field_str line "algorithm",
                 field_num line "size",
                 field_str line "checkpoint",
                 field_num line "recover_ms" )
             with
             | Some name, Some s, Some c, Some ms ->
                 Hashtbl.replace baseline
                   (Printf.sprintf "%s %d %s" name (int_of_float s) c)
                   ms
             | _ -> ()
           done
         with End_of_file -> ());
        close_in ic;
        let failures = ref [] in
        List.iter
          (fun (name, size, ckpt, ms, _, _) ->
            match Hashtbl.find_opt baseline (key name size ckpt) with
            | Some base_ms when base_ms >= 0.5 && ms > base_ms /. frac ->
                failures :=
                  Printf.sprintf
                    "%s: %.2f ms > baseline %.2f ms / %.2f"
                    (key name size ckpt) ms base_ms frac
                  :: !failures
            | _ -> ())
          rows;
        if !failures <> [] then begin
          Printf.eprintf
            "RECOVERY-TIME REGRESSION GATE FAILED (baseline %s):\n%s\n%!"
            baseline_path
            (String.concat "\n" (List.rev !failures));
          exit 1
        end
        else
          Printf.printf "recovery-time gate passed (<= baseline/%.2f of %s)\n%!"
            frac baseline_path
      end)

(* Ablation: head-to-head modeled comparison of a design choice. *)
let ablation_compare ~title pairs =
  Printf.printf "\n### ABLATION: %s\n" title;
  Printf.printf "%28s  %14s  %14s\n" "queue" "model Mops/s" "postflush/op";
  List.iter
    (fun name ->
      let entry = Dq.Registry.find name in
      let cfg =
        {
          Harness.Runner.default_config with
          threads = 1;
          ops_per_thread;
        }
      in
      let r = Harness.Runner.run_median ~reps entry Harness.Workload.Pairs cfg in
      let c = Harness.Runner.run_census entry ~ops:2_000 in
      let _, _, _, enq_pf = c.Harness.Runner.enq in
      let _, _, _, deq_pf = c.Harness.Runner.deq in
      Printf.printf "%28s  %14.3f  %7.2f/%5.2f\n" name
        r.Harness.Runner.model_mops enq_pf deq_pf)
    (List.concat_map (fun (a, b) -> [ a; b ]) pairs)

let sections =
  [
    ("fig2-w1", fun () -> figure2_workload Harness.Workload.Random_5050);
    ("fig2-w2", fun () -> figure2_workload Harness.Workload.Pairs);
    ("fig2-w3", fun () -> figure2_workload Harness.Workload.Producers);
    ("fig2-w4", fun () -> figure2_workload Harness.Workload.Consumers);
    ("fig2-w5", fun () -> figure2_workload Harness.Workload.Mixed_pc);
    ("census", census);
    ("shard-scaling", shard_scaling);
    ("heap-ops", heap_ops);
    ("set-ops", set_ops);
    ("durability-lag", durability_lag);
    ("recovery-time", recovery_time);
    ("export", export);
    ("micro", micro);
    ("recovery", recovery);
    ( "ablation-movnti",
      fun () ->
        ablation_compare
          ~title:
            "non-temporal writes (Section 6.3) vs store+flush for the \
             per-thread persistent slots"
          [
            ("OptUnlinkedQ", "OptUnlinkedQ/store+flush");
            ("OptLinkedQ", "OptLinkedQ/store+flush");
          ] );
    ( "ablation-predcut",
      fun () ->
        ablation_compare
          ~title:
            "backward-link cut after the fence (Appendix A) vs unbounded \
             flush walks"
          [
            ("LinkedQ", "LinkedQ/no-predcut");
            ("OptLinkedQ", "OptLinkedQ/no-predcut");
          ] );
    ( "ablation-noinval",
      fun () ->
        Printf.printf
          "\n\
           ### ABLATION: flushes without cache invalidation (future \
           platform; Section 6 predicts\n\
           ### UnlinkedQ/LinkedQ close the gap to the Opt queues)\n";
        figure2_workload ~latency:Nvm.Latency.no_invalidation
          Harness.Workload.Random_5050 );
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> List.map fst sections
  in
  Printf.printf "Durable Queues: The Second Amendment — benchmark reproduction\n";
  Printf.printf "host cores=%d  ops/thread=%d  threads=%s\n%!"
    (Domain.recommended_domain_count ())
    ops_per_thread
    (String.concat "," (List.map string_of_int threads_list));
  List.iter
    (fun id ->
      match List.assoc_opt id sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S; have: %s\n" id
            (String.concat ", " (List.map fst sections)))
    requested
